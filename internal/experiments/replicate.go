package experiments

import (
	"time"

	"adhocsim/internal/phy"
	"adhocsim/internal/runner"
)

// This file is the replication layer over the classic single-run
// entry points: every experiment gains a counterpart that fans N
// independently seeded replications out across workers
// (internal/runner) and aggregates each metric with a mean and 95%
// confidence interval — the averaging the paper's tables and figures
// report. Replication 0 always reuses the root seed, so a
// single-replication run reproduces the classic serial output exactly.

// Rep configures a replicated experiment: how many independent
// replications to run and across how many worker goroutines.
// The zero value means one replication on all available CPUs.
type Rep struct {
	// Replications is the number of independently seeded runs to
	// aggregate; 0 and 1 both mean a single run.
	Replications int
	// Workers bounds the worker goroutines; 0 selects GOMAXPROCS.
	// Results never depend on it.
	Workers int
	// Progress, when non-nil, is called as runs complete (see
	// runner.Config.Progress).
	Progress func(done, total int)
}

func (r Rep) reps() int {
	if r.Replications < 1 {
		return 1
	}
	return r.Replications
}

func (r Rep) config() runner.Config {
	return runner.Config{Workers: r.Workers, Progress: r.Progress}
}

// TwoNodeSummary aggregates TwoNodeResult metrics over replications.
type TwoNodeSummary struct {
	Replications int            `json:"replications"`
	IdealMbps    float64        `json:"ideal_mbps"`
	Mbps         runner.Summary `json:"mbps"`
	Retries      runner.Summary `json:"retries"`
	Drops        runner.Summary `json:"drops"`
	// Runs holds the per-replication results in replication order.
	Runs []TwoNodeResult `json:"runs"`
}

// ReplicateTwoNode runs rep.Replications independently seeded copies of
// the cfg experiment in parallel and aggregates their metrics. The
// aggregate is bit-identical for any worker count.
func ReplicateTwoNode(cfg TwoNode, rep Rep) TwoNodeSummary {
	rcfg := rep.config()
	if cfg.RateController != nil {
		// The controller is one live object shared by every replication;
		// concurrent replications would race on its state. Serialize.
		rcfg.Workers = 1
	}
	runs := runner.Map(rcfg, rep.reps(), func(i int) TwoNodeResult {
		c := cfg
		c.Seed = runner.SeedFor(cfg.Seed, i)
		return RunTwoNode(c)
	})
	return TwoNodeSummary{
		Replications: len(runs),
		IdealMbps:    runs[0].IdealMbps,
		Mbps:         runner.SummarizeBy(runs, func(r TwoNodeResult) float64 { return r.MeasuredMbps }),
		Retries:      runner.SummarizeBy(runs, func(r TwoNodeResult) float64 { return float64(r.Retries) }),
		Drops:        runner.SummarizeBy(runs, func(r TwoNodeResult) float64 { return float64(r.Drops) }),
		Runs:         runs,
	}
}

// FourNodeSummary aggregates FourNodeResult metrics over replications.
type FourNodeSummary struct {
	Replications int            `json:"replications"`
	Session1Kbps runner.Summary `json:"session1_kbps"`
	Session2Kbps runner.Summary `json:"session2_kbps"`
	Fairness     runner.Summary `json:"fairness"`
	// Runs holds the per-replication results in replication order.
	Runs []FourNodeResult `json:"runs"`
}

// ReplicateFourNode runs rep.Replications independently seeded copies of
// the cfg experiment in parallel and aggregates their metrics.
func ReplicateFourNode(cfg FourNode, rep Rep) FourNodeSummary {
	runs := runner.Map(rep.config(), rep.reps(), func(i int) FourNodeResult {
		c := cfg
		c.Seed = runner.SeedFor(cfg.Seed, i)
		return RunFourNode(c)
	})
	return FourNodeSummary{
		Replications: len(runs),
		Session1Kbps: runner.SummarizeBy(runs, func(r FourNodeResult) float64 { return r.Session1Kbps }),
		Session2Kbps: runner.SummarizeBy(runs, func(r FourNodeResult) float64 { return r.Session2Kbps }),
		Fairness:     runner.SummarizeBy(runs, func(r FourNodeResult) float64 { return r.Fairness }),
		Runs:         runs,
	}
}

// Figure2Reps is Figure2 with replication: every (transport, access)
// cell is averaged over rep.Replications runs, and the cell's
// MeasuredCI reports the 95% confidence half-width. All
// cell-replication pairs share one worker pool.
func Figure2Reps(rate phy.Rate, seed uint64, duration time.Duration, rep Rep) []Figure2Cell {
	type panel struct {
		tr  Transport
		rts bool
	}
	panels := []panel{{UDP, false}, {UDP, true}, {TCP, false}, {TCP, true}}
	reps := rep.reps()
	runs := runner.Map(rep.config(), len(panels)*reps, func(k int) TwoNodeResult {
		p, r := panels[k/reps], k%reps
		return RunTwoNode(TwoNode{
			Rate:      rate,
			Distance:  10,
			Transport: p.tr,
			RTSCTS:    p.rts,
			Duration:  duration,
			Seed:      runner.SeedFor(seed, r),
		})
	})
	cells := make([]Figure2Cell, len(panels))
	for i, p := range panels {
		sum := runner.SummarizeBy(runs[i*reps:(i+1)*reps],
			func(r TwoNodeResult) float64 { return r.MeasuredMbps })
		cells[i] = Figure2Cell{
			Transport:  p.tr,
			RTSCTS:     p.rts,
			Ideal:      runs[i*reps].IdealMbps,
			Measured:   sum.Mean,
			MeasuredCI: sum.CI95,
		}
	}
	return cells
}

// runFourNodeFigureReps fans the four (transport × access) panels of a
// four-station figure, each replicated rep.Replications times, across
// one worker pool. Panels keep the classic convention of sharing the
// same per-replication seed sequence.
func runFourNodeFigureReps(base FourNode, seed uint64, duration time.Duration, rep Rep) []FourNodeCell {
	type panel struct {
		tr  Transport
		rts bool
	}
	panels := []panel{{UDP, false}, {UDP, true}, {TCP, false}, {TCP, true}}
	reps := rep.reps()
	runs := runner.Map(rep.config(), len(panels)*reps, func(k int) FourNodeResult {
		p, r := panels[k/reps], k%reps
		cfg := base
		cfg.Transport = p.tr
		cfg.RTSCTS = p.rts
		cfg.Seed = runner.SeedFor(seed, r)
		cfg.Duration = duration
		if cfg.Profile == nil {
			cfg.Profile = phy.TestbedProfile()
		}
		return RunFourNode(cfg)
	})
	cells := make([]FourNodeCell, len(panels))
	for i, p := range panels {
		panelRuns := runs[i*reps : (i+1)*reps]
		s1 := runner.SummarizeBy(panelRuns, func(r FourNodeResult) float64 { return r.Session1Kbps })
		s2 := runner.SummarizeBy(panelRuns, func(r FourNodeResult) float64 { return r.Session2Kbps })
		fair := runner.SummarizeBy(panelRuns, func(r FourNodeResult) float64 { return r.Fairness })
		res := panelRuns[0] // replication 0 carries the classic counters
		res.Session1Kbps = s1.Mean
		res.Session2Kbps = s2.Mean
		res.Fairness = fair.Mean
		cells[i] = FourNodeCell{
			Transport: p.tr,
			RTSCTS:    p.rts,
			Result:    res,
			S1CI:      s1.CI95,
			S2CI:      s2.CI95,
		}
	}
	return cells
}

// Figure7Reps is Figure7 with replication and parallel fan-out.
func Figure7Reps(seed uint64, duration time.Duration, rep Rep) []FourNodeCell {
	return runFourNodeFigureReps(FourNode{
		Rate: phy.Rate11, D12: 25, D23: 82.5, D34: 25,
	}, seed, duration, rep)
}

// Figure9Reps is Figure9 with replication and parallel fan-out.
func Figure9Reps(seed uint64, duration time.Duration, rep Rep) []FourNodeCell {
	return runFourNodeFigureReps(FourNode{
		Rate: phy.Rate2, D12: 25, D23: 92.5, D34: 25,
	}, seed, duration, rep)
}

// Figure11Reps is Figure11 with replication and parallel fan-out.
func Figure11Reps(seed uint64, duration time.Duration, rep Rep) []FourNodeCell {
	return runFourNodeFigureReps(FourNode{
		Rate: phy.Rate11, D12: 25, D23: 62.5, D34: 25,
		Session2Reversed: true,
	}, seed, duration, rep)
}

// Figure12Reps is Figure12 with replication and parallel fan-out.
func Figure12Reps(seed uint64, duration time.Duration, rep Rep) []FourNodeCell {
	return runFourNodeFigureReps(FourNode{
		Rate: phy.Rate2, D12: 25, D23: 62.5, D34: 25,
		Session2Reversed: true,
	}, seed, duration, rep)
}

// Figure3Reps is Figure3 with per-point replication. All four rate
// curves share one worker pool, so every (rate, distance, replication)
// job fans out at once.
func Figure3Reps(seed uint64, packets int, rep Rep) map[phy.Rate][]LossPoint {
	cfgs := make([]LossSweep, len(phy.Rates))
	for i, r := range phy.Rates {
		cfgs[i] = LossSweep{
			Rate:         r,
			Packets:      packets,
			Seed:         seed + uint64(i)*7919,
			Replications: rep.Replications,
		}
	}
	curves := runLossSweeps(cfgs, rep.Workers, rep.Progress)
	out := make(map[phy.Rate][]LossPoint, len(phy.Rates))
	for i, r := range phy.Rates {
		out[r] = curves[i]
	}
	return out
}

// Figure4Reps is Figure4 with per-point replication. Both days share
// one worker pool.
func Figure4Reps(seed uint64, packets int, rep Rep) []Figure4Curve {
	base := phy.DefaultProfile()
	days := []phy.Weather{phy.WeatherClear, phy.WeatherDamp}
	cfgs := make([]LossSweep, len(days))
	for i, w := range days {
		cfgs[i] = LossSweep{
			Rate:         phy.Rate1,
			Distances:    Figure4Distances(),
			Packets:      packets,
			Seed:         seed + uint64(i)*104729,
			Profile:      w.Apply(base),
			Replications: rep.Replications,
		}
	}
	curves := runLossSweeps(cfgs, rep.Workers, rep.Progress)
	out := make([]Figure4Curve, len(days))
	for i, w := range days {
		out[i] = Figure4Curve{Day: w.Name, Points: curves[i]}
	}
	return out
}

// Table3Reps is Table3 with replicated loss curves: range estimates are
// read off the replication-averaged curves.
func Table3Reps(seed uint64, packets int, rep Rep) []RangeEstimate {
	prof := phy.DefaultProfile()
	curves := Figure3Reps(seed, packets, rep)
	var rows []RangeEstimate
	for i := len(phy.Rates) - 1; i >= 0; i-- {
		r := phy.Rates[i]
		rows = append(rows, RangeEstimate{
			Rate:     r,
			Measured: CrossingDistance(curves[r], 0.5),
			Analytic: prof.MedianRange(r),
			Paper:    paperTable3[r],
		})
	}
	for _, r := range []phy.Rate{phy.Rate2, phy.Rate1} {
		rows = append(rows, RangeEstimate{
			Rate:     r,
			Control:  true,
			Measured: CrossingDistance(curves[r], 0.5),
			Analytic: prof.MedianRange(r),
			Paper:    paperTable3[r],
		})
	}
	return rows
}
