package experiments

import (
	"fmt"
	"strings"
	"time"

	"adhocsim/internal/phy"
	"adhocsim/internal/routing"
	"adhocsim/internal/runner"
	"adhocsim/internal/scenario"
	"adhocsim/internal/stats"
)

// This file runs the canonical string-topology workload the source
// paper stops short of: end-to-end goodput versus hop count over a
// chain of relays, UDP and TCP, on top of the calibrated PHY/MAC. The
// per-hop geometry keeps every link comfortably inside the data rate's
// transmission range, so the curve isolates what multi-hop forwarding
// itself costs — intra-path contention (a relay cannot receive while
// its predecessor or successor transmits) plus, under DSDV, the
// control-plane's convergence and overhead.

// ChainConfig parameterizes RunChainThroughput.
type ChainConfig struct {
	// MaxHops is the longest chain measured (default 8): points run at
	// 1..MaxHops hops, i.e. 2..MaxHops+1 stations.
	MaxHops int
	// SpacingM is the per-hop distance in meters (default 20, ~5 dB of
	// fade margin at 11 Mbit/s).
	SpacingM float64
	// Rate is the data rate (default 11 Mbit/s).
	Rate phy.Rate
	// Routing selects the control plane: routing.ProtocolStatic
	// (default) or routing.ProtocolDSDV.
	Routing string
	// PacketSize is the application payload (default 512, the paper's).
	PacketSize int
	// Duration is the measurement horizon per point (default 10s).
	Duration time.Duration
	// Seed roots each point's run; replication seeds derive from it.
	Seed uint64
}

func (c ChainConfig) withDefaults() ChainConfig {
	if c.MaxHops == 0 {
		c.MaxHops = 8
	}
	if c.SpacingM == 0 {
		c.SpacingM = 20
	}
	if c.Rate == 0 {
		c.Rate = phy.Rate11
	}
	if c.Routing == "" {
		c.Routing = routing.ProtocolStatic
	}
	if c.PacketSize == 0 {
		c.PacketSize = 512
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	return c
}

// Spec compiles one point of the sweep: a saturating flow across a
// string of hops+1 stations.
func (c ChainConfig) Spec(hops int, tr Transport) scenario.Spec {
	c = c.withDefaults()
	rp := &scenario.RoutingParams{Protocol: c.Routing}
	if c.Routing == routing.ProtocolDSDV {
		// Keep marginal multi-hop shortcuts out of the neighbor set, as
		// the chain presets do (see their definition).
		rp.NeighborMarginDB = 3
	}
	return scenario.Spec{
		Name:        fmt.Sprintf("chain-%dhop-%s", hops, tr.scenarioTransport()),
		Description: "goodput vs hop count sweep point",
		Seed:        c.Seed,
		Duration:    scenario.Duration(c.Duration),
		MSS:         c.PacketSize,
		Topology:    scenario.Topology{Kind: scenario.KindLine, N: hops + 1, Spacing: c.SpacingM},
		MAC:         scenario.MACParams{RateMbps: c.Rate.Mbps()},
		Routing:     rp,
		Flows: []scenario.Flow{{
			Src: 0, Dst: hops,
			Transport:  tr.scenarioTransport(),
			PacketSize: c.PacketSize,
			Port:       9000,
		}},
	}
}

// ChainPoint is one cell of the goodput-vs-hop-count result.
type ChainPoint struct {
	Hops      int       `json:"hops"`
	Transport Transport `json:"transport"`
	// Kbps is the end-to-end application goodput (replication mean) and
	// KbpsCI its 95% confidence half-width (0 for a single run).
	Kbps   float64 `json:"kbps"`
	KbpsCI float64 `json:"kbps_ci95"`
	// PathHops is the mean hop count delivered packets actually
	// traveled (equals Hops when routing found the string; lower means
	// a shortcut, 0 means nothing arrived).
	PathHops float64 `json:"path_hops"`
	// CtlKbps is the routing control-plane overhead summed over all
	// stations (0 for static routing).
	CtlKbps float64 `json:"ctl_kbps"`
}

// RunChainThroughput measures end-to-end goodput versus hop count for
// both transports: the canonical string-topology result. Points are
// ordered UDP 1..MaxHops hops, then TCP likewise. An invalid config
// (unknown protocol, unroutable geometry) returns an error.
func RunChainThroughput(cfg ChainConfig) ([]ChainPoint, error) {
	return ChainThroughputReps(cfg, Rep{})
}

// ChainThroughputReps is RunChainThroughput with replication: each
// point aggregates rep.Replications independently seeded runs.
func ChainThroughputReps(cfg ChainConfig, rep Rep) ([]ChainPoint, error) {
	cfg = cfg.withDefaults()
	var points []ChainPoint
	for _, tr := range []Transport{UDP, TCP} {
		for hops := 1; hops <= cfg.MaxHops; hops++ {
			sum, err := scenario.Replicate(cfg.Spec(hops, tr), rep.reps(), rep.Workers, rep.Progress)
			if err != nil {
				return nil, fmt.Errorf("experiments: chain point %d hops: %w", hops, err)
			}
			p := ChainPoint{
				Hops:      hops,
				Transport: tr,
				Kbps:      sum.Flows[0].Kbps.Mean,
				KbpsCI:    sum.Flows[0].Kbps.CI95,
				PathHops:  sum.Flows[0].Hops.Mean,
			}
			ctl := runner.SummarizeBy(sum.Runs, func(r scenario.Result) float64 {
				var bytes uint64
				for _, st := range r.Stations {
					bytes += st.CtlBytes
				}
				return stats.Kbps(bytes, r.Duration.D())
			})
			p.CtlKbps = ctl.Mean
			points = append(points, p)
		}
	}
	return points, nil
}

// RenderChain prints the sweep as the CLI table: one row per hop count,
// goodput columns per transport.
func RenderChain(cfg ChainConfig, points []ChainPoint) string {
	cfg = cfg.withDefaults()
	byKey := map[[2]int]ChainPoint{}
	withCI := false
	for _, p := range points {
		byKey[[2]int{int(p.Transport), p.Hops}] = p
		if p.KbpsCI > 0 {
			withCI = true
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Chain throughput vs hop count (%s routing, %v, %d-byte packets, %.0f m hops)\n",
		cfg.Routing, cfg.Rate, cfg.PacketSize, cfg.SpacingM)
	fmt.Fprintf(&b, "%-5s | %-22s | %-22s | %-9s | %s\n", "hops", "UDP [kbit/s]", "TCP [kbit/s]", "udp path", "ctl [kbit/s]")
	cell := func(p ChainPoint) string {
		if withCI {
			return fmt.Sprintf("%8.1f ± %-7.1f", p.Kbps, p.KbpsCI)
		}
		return fmt.Sprintf("%8.1f", p.Kbps)
	}
	for hops := 1; hops <= cfg.MaxHops; hops++ {
		u := byKey[[2]int{int(UDP), hops}]
		t := byKey[[2]int{int(TCP), hops}]
		fmt.Fprintf(&b, "%-5d | %-22s | %-22s | %9.1f | %10.2f\n",
			hops, cell(u), cell(t), u.PathHops, u.CtlKbps)
	}
	return b.String()
}
