package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Unbiased variance of that set is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7)
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.CI95() != 0 {
		t.Fatal("zero-value Welford must report zeros")
	}
	w.Add(3)
	if w.Var() != 0 {
		t.Fatal("single observation has zero variance")
	}
}

// Property: Welford matches the two-pass mean for random data.
func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%100 + 2
		xs := make([]float64, count)
		var w Welford
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			sum += xs[i]
			w.Add(xs[i])
		}
		mean := sum / float64(count)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(count-1)
		return math.Abs(w.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(w.Var()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean() != 5.5 {
		t.Fatalf("Mean = %v, want 5.5", s.Mean())
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := s.Quantile(0.5); got < 5 || got > 6 {
		t.Fatalf("median = %v", got)
	}
	var empty Series
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Fatal("empty series must report zeros")
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(time.Second)
	m.Observe(500*time.Millisecond, 1000) // within window: no sample
	if m.Samples.Len() != 0 {
		t.Fatal("sampled before a full window elapsed")
	}
	m.Observe(time.Second, 125_000) // 1 Mbit in 1 s
	if m.Samples.Len() != 1 {
		t.Fatalf("samples = %d, want 1", m.Samples.Len())
	}
	if got := m.Samples.V[0]; math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("rate = %v Mbit/s, want 1", got)
	}
	m.Observe(2*time.Second, 375_000) // +2 Mbit in 1 s
	if got := m.Samples.V[1]; math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("rate = %v Mbit/s, want 2", got)
	}
}

func TestMbpsKbps(t *testing.T) {
	if got := Mbps(125_000, time.Second); got != 1 {
		t.Fatalf("Mbps = %v", got)
	}
	if got := Kbps(125, time.Second); got != 1 {
		t.Fatalf("Kbps = %v", got)
	}
	if Mbps(100, 0) != 0 || Kbps(100, -time.Second) != 0 {
		t.Fatal("degenerate durations must yield 0")
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness(1, 1, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal flows: %v, want 1", got)
	}
	if got := JainFairness(1, 0, 0, 0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("one-flow-takes-all: %v, want 0.25", got)
	}
	if got := JainFairness(); got != 0 {
		t.Fatalf("no flows: %v", got)
	}
	if got := JainFairness(0, 0); got != 1 {
		t.Fatalf("all-zero flows: %v, want 1 (vacuously fair)", got)
	}
	// Index is scale-invariant.
	a := JainFairness(1, 2, 3)
	b := JainFairness(10, 20, 30)
	if math.Abs(a-b) > 1e-12 {
		t.Fatal("Jain index must be scale invariant")
	}
}
