// Package stats provides the small statistics toolkit the experiment
// harness uses: streaming mean/variance (Welford), confidence intervals,
// time series, and rate meters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates a streaming mean and variance. The zero value is
// ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// CI95 returns the half-width of the normal-approximation 95 %
// confidence interval of the mean.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Std() / math.Sqrt(float64(w.n))
}

// String renders the accumulator as "mean ± ci (n=N)".
func (w *Welford) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", w.Mean(), w.CI95(), w.n)
}

// Series is an append-only (time, value) sequence, e.g. a throughput
// trace sampled per interval.
type Series struct {
	T []time.Duration
	V []float64
}

// Add appends one sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.V) }

// Mean returns the mean of the values.
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the values using the
// nearest-rank method on a sorted copy.
func (s *Series) Quantile(q float64) float64 {
	if len(s.V) == 0 {
		return 0
	}
	c := append([]float64(nil), s.V...)
	sort.Float64s(c)
	idx := int(q*float64(len(c)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c) {
		idx = len(c) - 1
	}
	return c[idx]
}

// RateMeter converts a monotonically growing byte counter into Mbit/s
// samples over fixed windows.
type RateMeter struct {
	window    time.Duration
	lastBytes uint64
	lastTime  time.Duration
	Samples   Series
}

// NewRateMeter creates a meter with the given sampling window.
func NewRateMeter(window time.Duration) *RateMeter {
	return &RateMeter{window: window}
}

// Window returns the sampling window.
func (r *RateMeter) Window() time.Duration { return r.window }

// Observe records the byte counter at time now, emitting a sample if a
// full window has elapsed since the previous sample.
func (r *RateMeter) Observe(now time.Duration, bytes uint64) {
	if now-r.lastTime < r.window {
		return
	}
	dt := now - r.lastTime
	db := bytes - r.lastBytes
	r.Samples.Add(now, float64(db)*8/dt.Seconds()/1e6)
	r.lastTime = now
	r.lastBytes = bytes
}

// Mbps converts a byte count over a duration to Mbit/s.
func Mbps(bytes uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e6
}

// Kbps converts a byte count over a duration to kbit/s.
func Kbps(bytes uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e3
}

// JainFairness computes Jain's fairness index over per-flow throughputs:
// 1.0 is perfectly fair, 1/n is maximally unfair. The paper's four-node
// experiments are, in essence, measurements of this index.
func JainFairness(xs ...float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
