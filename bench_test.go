package adhocsim

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md.
//
// Each bench regenerates its artifact per iteration and reports the
// headline quantities through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the same rows/series the paper reports (in metric form). The
// simulated horizons are chosen so one iteration is meaningful yet
// cheap; cmd/adhocsim runs the long-form versions.

import (
	"testing"
	"time"

	"adhocsim/internal/experiments"
	"adhocsim/internal/mac"
	"adhocsim/internal/phy"
	"adhocsim/internal/scenario"
)

const benchHorizon = 2 * time.Second

// BenchmarkTable1Constants regenerates the protocol-parameter table
// (pure formatting; it exists so every paper artifact has a bench).
func BenchmarkTable1Constants(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.RenderTable1())
	}
	b.ReportMetric(float64(n), "table_bytes")
	b.ReportMetric(phy.EIFS().Seconds()*1e6, "eifs_us")
}

// BenchmarkTable2MaxThroughput evaluates Equations (1)/(2) across the
// full rate × payload × access-mode grid of the paper's Table 2.
func BenchmarkTable2MaxThroughput(b *testing.B) {
	var rows []Table2Row
	for i := 0; i < b.N; i++ {
		rows = Table2()
	}
	b.ReportMetric(rows[0].NoRTS, "Mbps_11_512_basic")
	b.ReportMetric(rows[0].RTS, "Mbps_11_512_rts")
	b.ReportMetric(rows[1].NoRTS, "Mbps_11_1024_basic")
	b.ReportMetric(rows[7].NoRTS, "Mbps_1_1024_basic")
}

// BenchmarkFigure2TwoNodeThroughput runs the §3.1 single-session
// experiments at 11 Mbit/s: UDP and TCP, basic access and RTS/CTS,
// reporting measured vs analytic throughput.
func BenchmarkFigure2TwoNodeThroughput(b *testing.B) {
	var cells []experiments.Figure2Cell
	for i := 0; i < b.N; i++ {
		cells = Figure2(Rate11, uint64(i), benchHorizon)
	}
	b.ReportMetric(cells[0].Measured, "Mbps_udp_basic")
	b.ReportMetric(cells[0].Ideal, "Mbps_udp_basic_ideal")
	b.ReportMetric(cells[1].Measured, "Mbps_udp_rts")
	b.ReportMetric(cells[2].Measured, "Mbps_tcp_basic")
	b.ReportMetric(cells[3].Measured, "Mbps_tcp_rts")
}

// BenchmarkFigure3LossVsDistance sweeps packet loss against distance for
// all four rates and reports each rate's 50 %-loss crossing (the
// transmission range the curve implies).
func BenchmarkFigure3LossVsDistance(b *testing.B) {
	var curves map[Rate][]LossPoint
	for i := 0; i < b.N; i++ {
		curves = Figure3(uint64(i), 60)
	}
	for _, r := range []Rate{Rate1, Rate2, Rate5_5, Rate11} {
		b.ReportMetric(experiments.CrossingDistance(curves[r], 0.5), "m_range_"+r.String())
	}
}

// BenchmarkFigure4Weather compares the 1 Mbit/s loss curve on the two
// weather profiles and reports the day-to-day range spread.
func BenchmarkFigure4Weather(b *testing.B) {
	var curves []experiments.Figure4Curve
	for i := 0; i < b.N; i++ {
		curves = Figure4(uint64(i), 60)
	}
	clear := experiments.CrossingDistance(curves[0].Points, 0.5)
	damp := experiments.CrossingDistance(curves[1].Points, 0.5)
	b.ReportMetric(clear, "m_range_clear")
	b.ReportMetric(damp, "m_range_damp")
	b.ReportMetric(clear-damp, "m_day_spread")
}

// BenchmarkTable3Ranges derives the per-rate transmission-range
// estimates from measured loss curves, as the paper derives Table 3
// from Figure 3.
func BenchmarkTable3Ranges(b *testing.B) {
	var rows []RangeEstimate
	for i := 0; i < b.N; i++ {
		rows = Table3(uint64(i), 60)
	}
	for _, r := range rows {
		name := "m_data_" + r.Rate.String()
		if r.Control {
			name = "m_ctrl_" + r.Rate.String()
		}
		b.ReportMetric(r.Measured, name)
	}
}

// reportFourNode emits the per-session goodputs of one figure panel.
func reportFourNode(b *testing.B, cells []experiments.FourNodeCell) {
	b.Helper()
	for _, c := range cells {
		tag := "udp"
		if c.Transport == TCP {
			tag = "tcp"
		}
		if c.RTSCTS {
			tag += "_rts"
		} else {
			tag += "_basic"
		}
		b.ReportMetric(c.Result.Session1Kbps, "kbps_s1_"+tag)
		b.ReportMetric(c.Result.Session2Kbps, "kbps_s2_"+tag)
	}
}

// BenchmarkFigure7FourNode11Mbps runs the asymmetric §3.3 scenario at
// 11 Mbit/s (Figures 6–7): sessions S1→S2 and S3→S4 at 25/82.5/25 m.
func BenchmarkFigure7FourNode11Mbps(b *testing.B) {
	var cells []experiments.FourNodeCell
	for i := 0; i < b.N; i++ {
		cells = Figure7(uint64(i), benchHorizon)
	}
	reportFourNode(b, cells)
}

// BenchmarkFigure9FourNode2Mbps runs the same scenario at 2 Mbit/s
// (Figures 8–9), where the paper finds the system more balanced.
func BenchmarkFigure9FourNode2Mbps(b *testing.B) {
	var cells []experiments.FourNodeCell
	for i := 0; i < b.N; i++ {
		cells = Figure9(uint64(i), benchHorizon)
	}
	reportFourNode(b, cells)
}

// BenchmarkFigure11Symmetric11Mbps runs the symmetric scenario
// (Figures 10–11): sessions S1→S2 and S4→S3 at 25/62.5/25 m, 11 Mbit/s.
func BenchmarkFigure11Symmetric11Mbps(b *testing.B) {
	var cells []experiments.FourNodeCell
	for i := 0; i < b.N; i++ {
		cells = Figure11(uint64(i), benchHorizon)
	}
	reportFourNode(b, cells)
}

// BenchmarkFigure12Symmetric2Mbps runs the symmetric scenario at
// 2 Mbit/s (Figure 12).
func BenchmarkFigure12Symmetric2Mbps(b *testing.B) {
	var cells []experiments.FourNodeCell
	for i := 0; i < b.N; i++ {
		cells = Figure12(uint64(i), benchHorizon)
	}
	reportFourNode(b, cells)
}

// --- Macro benchmarks ----------------------------------------------------

// BenchmarkScenarioSteadyState measures the marginal cost of one more
// replication of the full random-1024 preset — 1024 stations scattered
// over a 3.4×3.4 km field, eight paced nearest-neighbor UDP flows, 5 s
// horizon — on a reused arena: the network is built once outside the
// timer and each iteration re-seeds it (Instance.Reset) and runs the
// whole horizon with traffic, which is exactly the per-replication work
// of a sweep. It is the macro counterpart of
// BenchmarkMedium1024Stations: it exercises the whole stack (CBR → UDP
// → network → MAC → medium → PHY) instead of the medium alone, so it
// is the benchmark the PHY-arithmetic caches and the batch event
// kernel are judged against (BENCH_PR4.json records before/after; the
// before state had no Reset, so its per-replication cost necessarily
// included a rebuild).
func BenchmarkScenarioSteadyState(b *testing.B) {
	spec, err := scenario.Preset("random-1024")
	if err != nil {
		b.Fatal(err)
	}
	inst, err := scenario.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	horizon := inst.Spec.Duration.D()
	var events, delivered uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inst.Reset(spec.Seed); err != nil {
			b.Fatal(err)
		}
		inst.Net.Run(horizon)
		res := inst.Collect(horizon)
		events += inst.Net.Sched.Fired()
		delivered = 0
		for _, f := range res.Flows {
			delivered += f.Received
		}
		if delivered == 0 {
			b.Fatal("scenario delivered nothing: the bench is not exercising traffic")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
	b.ReportMetric(float64(delivered), "pkts_delivered")
}

// BenchmarkScenarioReplicate measures a serial replication sweep of a
// small saturating preset through the public Replicate entry point,
// where per-replication network construction is a visible fraction of
// the work — the case the arena-reuse path (build once per worker,
// Reset per replication) is for.
func BenchmarkScenarioReplicate(b *testing.B) {
	spec, err := scenario.Preset("grid-3x3")
	if err != nil {
		b.Fatal(err)
	}
	spec.Duration = scenario.Duration(time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Replicate(spec, 8, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChain8Multihop measures the chain-8 preset end to end: DSDV
// discovering an 8-station string on the air and relaying a paced UDP
// flow over 7 hops. It is the routing subsystem's macro benchmark — the
// control plane (advertisement broadcasts, triggered updates, neighbor
// admission) and the forwarding path (per-hop route lookup, TTL
// accounting) both sit on the measured path, so regressions in either
// show up here. The arena is built once and re-seeded per iteration,
// exercising the routing Reset path the replication sweeps rely on.
func BenchmarkChain8Multihop(b *testing.B) {
	spec, err := scenario.Preset("chain-8")
	if err != nil {
		b.Fatal(err)
	}
	spec.Duration = scenario.Duration(4 * time.Second)
	inst, err := scenario.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	horizon := inst.Spec.Duration.D()
	var res scenario.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inst.Reset(spec.Seed); err != nil {
			b.Fatal(err)
		}
		inst.Net.Run(horizon)
		res = inst.Collect(horizon)
		if res.Flows[0].Received == 0 {
			b.Fatal("chain delivered nothing: the bench is not exercising forwarding")
		}
	}
	var forwarded, ctlBytes uint64
	for _, st := range res.Stations {
		forwarded += st.NetForwarded
		ctlBytes += st.CtlBytes
	}
	b.ReportMetric(res.Flows[0].GoodputKbps, "kbps_goodput")
	b.ReportMetric(float64(res.Flows[0].Hops), "hops")
	b.ReportMetric(float64(forwarded), "pkts_forwarded")
	b.ReportMetric(float64(ctlBytes), "ctl_bytes")
}

// --- Ablations -----------------------------------------------------------

// fourNodeWith runs the Figure 7 UDP/basic scenario with a config hook,
// for the ablation benches.
func fourNodeWith(seed uint64, mutate func(*mac.Config), profile *Profile) experiments.FourNodeResult {
	cfg := experiments.FourNode{
		Rate: Rate11, D12: 25, D23: 82.5, D34: 25,
		Transport: UDP, Duration: benchHorizon, Seed: seed,
		Profile: profile,
	}
	return experiments.RunFourNodeWith(cfg, mutate)
}

// BenchmarkAblationEIFS quantifies how much of the four-node unfairness
// the EIFS rule contributes: session ratios with EIFS on vs off.
func BenchmarkAblationEIFS(b *testing.B) {
	var on, off experiments.FourNodeResult
	for i := 0; i < b.N; i++ {
		on = fourNodeWith(uint64(i), nil, nil)
		off = fourNodeWith(uint64(i), func(c *mac.Config) { c.DisableEIFS = true }, nil)
	}
	b.ReportMetric(on.Session2Kbps/on.Session1Kbps, "s2s1_ratio_eifs_on")
	b.ReportMetric(off.Session2Kbps/off.Session1Kbps, "s2s1_ratio_eifs_off")
}

// BenchmarkAblationCapture disables message-in-message capture to show
// its effect on the four-node scenario.
func BenchmarkAblationCapture(b *testing.B) {
	noCapture := DefaultProfile()
	noCapture.CaptureMarginDB = 1e9
	var on, off experiments.FourNodeResult
	for i := 0; i < b.N; i++ {
		on = fourNodeWith(uint64(i), nil, nil)
		off = fourNodeWith(uint64(i), nil, noCapture)
	}
	b.ReportMetric(on.Session1Kbps+on.Session2Kbps, "kbps_total_capture_on")
	b.ReportMetric(off.Session1Kbps+off.Session2Kbps, "kbps_total_capture_off")
}

// BenchmarkAblationDeferResponses measures the testbed firmware quirk
// (carrier sense before SIFS responses) the paper's §3.3 describes.
func BenchmarkAblationDeferResponses(b *testing.B) {
	var std, quirk experiments.FourNodeResult
	for i := 0; i < b.N; i++ {
		std = fourNodeWith(uint64(i), nil, nil)
		quirk = fourNodeWith(uint64(i), func(c *mac.Config) { c.DeferResponses = true }, nil)
	}
	b.ReportMetric(std.Session1Kbps, "kbps_s1_standard")
	b.ReportMetric(quirk.Session1Kbps, "kbps_s1_quirk")
}

// BenchmarkAblationShadowingSigma sweeps the shadowing σ to show how
// channel variability drives the loss-curve width (Figure 3's spread).
func BenchmarkAblationShadowingSigma(b *testing.B) {
	for _, sigma := range []float64{0, 2, 4, 6} {
		prof := DefaultProfile()
		prof.Fading.SigmaDB = sigma
		var pts []LossPoint
		for i := 0; i < b.N; i++ {
			pts = RunLossSweep(LossSweep{
				Rate: Rate11, Packets: 150, Seed: uint64(i), Profile: prof,
				Distances: []float64{15, 20, 25, 30, 35, 40, 45, 50, 55, 60},
			})
		}
		// Width of the transition region on the monotone envelope of the
		// measured curve (sample noise can locally dip).
		env := monotoneEnvelope(pts)
		width := experiments.CrossingDistance(env, 0.9) - experiments.CrossingDistance(env, 0.1)
		b.ReportMetric(width, "m_width_sigma"+fmtSigma(sigma))
	}
}

// monotoneEnvelope returns the running-maximum loss curve.
func monotoneEnvelope(pts []LossPoint) []LossPoint {
	out := append([]LossPoint(nil), pts...)
	for i := 1; i < len(out); i++ {
		if out[i].Loss < out[i-1].Loss {
			out[i].Loss = out[i-1].Loss
		}
	}
	return out
}

func fmtSigma(s float64) string {
	switch s {
	case 0:
		return "0"
	case 2:
		return "2"
	case 4:
		return "4"
	default:
		return "6"
	}
}

// BenchmarkAblationARF compares ARF dynamic rate switching against the
// best and worst fixed rates on a 60 m link (where 5.5 Mbit/s is the
// right choice and 11 Mbit/s barely works).
func BenchmarkAblationARF(b *testing.B) {
	run := func(seed uint64, rc mac.RateController, fixed Rate) float64 {
		res := RunTwoNode(TwoNode{
			Rate: fixed, Distance: 60, Transport: UDP,
			Duration: benchHorizon, Seed: seed,
			RateController: rc,
		})
		return res.MeasuredMbps
	}
	var arf, fixed11, fixed55 float64
	for i := 0; i < b.N; i++ {
		arf = run(uint64(i), NewARF(Rate11), Rate11)
		fixed11 = run(uint64(i), nil, Rate11)
		fixed55 = run(uint64(i), nil, Rate5_5)
	}
	b.ReportMetric(arf, "Mbps_arf")
	b.ReportMetric(fixed11, "Mbps_fixed11")
	b.ReportMetric(fixed55, "Mbps_fixed55")
}

// BenchmarkAblationMobilityRangeVsBreaks quantifies §3.2's closing
// remark: shorter transmission ranges break links (and thus routes) more
// often under mobility.
func BenchmarkAblationMobilityRangeVsBreaks(b *testing.B) {
	run := func(seed uint64, rangeM float64) int {
		net := NewNetwork(seed)
		a := net.AddStation(Pos(60, 60), MACConfig{})
		c := net.AddStation(Pos(80, 60), MACConfig{})
		w := DefaultWaypoint()
		// A 120 m field: courtyard-scale, where a 250 m (ns-2) range never
		// breaks but the measured ranges break constantly.
		w.Width, w.Height = 120, 120
		w.MinSpeed, w.MaxSpeed = 5, 10 // vehicular, to accumulate breaks fast
		w.Pause = 0
		w.Drive(net, a)
		w.Drive(net, c)
		var lm LinkMonitor
		lm.Watch(net, a, c, rangeM, 100*time.Millisecond)
		net.Run(10 * time.Minute)
		return lm.Breaks + lm.Repairs // link-state transitions = route events
	}
	var at30, at95, at250 int
	for i := 0; i < b.N; i++ {
		at30 = run(uint64(i), 30)   // measured 11 Mbit/s range
		at95 = run(uint64(i), 95)   // measured 2 Mbit/s range
		at250 = run(uint64(i), 250) // the range ns-2 assumes
	}
	b.ReportMetric(float64(at30), "transitions_range30m")
	b.ReportMetric(float64(at95), "transitions_range95m")
	b.ReportMetric(float64(at250), "transitions_range250m")
}
