// Exposed-station unfairness: the paper's Figure 6/7 scenario. Two
// concurrent sessions S1→S2 and S3→S4 at 11 Mbit/s with 25/82.5/25 m
// spacing. Although the stations are far outside each other's 30 m data
// range, the sessions interact — through physical carrier sense, EIFS
// deferrals (S1 cannot decode S4's basic-rate ACKs), and interference —
// and session 2 wins.
//
//	go run ./examples/exposed
package main

import (
	"fmt"
	"time"

	"adhocsim"
)

func main() {
	const horizon = 10 * time.Second

	fmt.Println("Four stations in a line: S1 --25m-- S2 --82.5m-- S3 --25m-- S4")
	fmt.Println("Session 1: S1->S2, Session 2: S3->S4, both saturating UDP at 11 Mbit/s")
	fmt.Println()

	for _, rts := range []bool{false, true} {
		res := adhocsim.RunFourNode(adhocsim.FourNode{
			Rate: adhocsim.Rate11,
			D12:  25, D23: 82.5, D34: 25,
			Transport: adhocsim.UDP,
			RTSCTS:    rts,
			Duration:  horizon,
			Seed:      42,
			// The paper's testbed channel had persistent per-link
			// asymmetries; this profile models them.
			Profile: adhocsim.TestbedProfile(),
		})
		mode := "basic access"
		if rts {
			mode = "RTS/CTS"
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  session 1 (S1->S2): %7.0f kbit/s   (EIFS deferrals at S1: %d)\n",
			res.Session1Kbps, res.EIFS1)
		fmt.Printf("  session 2 (S3->S4): %7.0f kbit/s   (EIFS deferrals at S3: %d)\n",
			res.Session2Kbps, res.EIFS2)
		fmt.Printf("  Jain fairness: %.2f\n\n", res.Fairness)
	}

	fmt.Println("Session 1 loses through the superposition the paper describes:")
	fmt.Println("S1 hears S3's data and S4's ACKs only as undecodable noise, so it")
	fmt.Println("owes EIFS where S3 (which decodes S2's 2 Mbit/s ACKs at 82.5 m)")
	fmt.Println("owes only DIFS - and the channel's static asymmetries make the")
	fmt.Println("imbalance persistent.")
}
