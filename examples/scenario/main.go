// Declarative scenarios: the same engine three ways. First a spec
// authored in Go (a hidden-terminal triple), then the same spec loaded
// from the checked-in JSON file, then a built-in preset replicated over
// several seeds — all without touching the node/app layers directly.
//
//	go run ./examples/scenario
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"adhocsim"
)

func main() {
	// 1. Author a spec in Go: two senders 220 m apart (beyond carrier
	// sense) converging on one middle receiver at 1 Mbit/s.
	spec := adhocsim.Scenario{
		Name:     "hidden-terminal-inline",
		Seed:     42,
		Duration: adhocsim.ScenarioDuration(5 * time.Second),
		Topology: adhocsim.ScenarioTopology{Kind: "line", N: 3, Spacing: 110},
		MAC:      adhocsim.ScenarioMAC{RateMbps: 1},
		Flows: []adhocsim.ScenarioFlow{
			{Src: 0, Dst: 1, Port: 9000},
			{Src: 2, Dst: 1, Port: 9001},
		},
	}
	res, err := adhocsim.RunScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Hidden terminal, authored in Go:")
	report(res)

	// 2. The same scenario from JSON, as cmd/adhocsim -scenario runs it.
	data, err := os.ReadFile(filepath.Join("examples", "scenario", "hidden-terminal.json"))
	if err != nil {
		log.Fatalf("read spec (run from the repository root): %v", err)
	}
	fromJSON, err := adhocsim.ParseScenario(data)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := adhocsim.RunScenario(fromJSON)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Same scenario from %s:\n", "hidden-terminal.json")
	report(res2)

	// 3. A preset replicated over 8 seeds: mean ± 95% CI per flow.
	ring, err := adhocsim.ScenarioPreset("ring-8")
	if err != nil {
		log.Fatal(err)
	}
	ring.Duration = adhocsim.ScenarioDuration(2 * time.Second)
	sum, err := adhocsim.ReplicateScenario(ring, 8, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Eight-station ring, 8 replications:")
	for _, f := range sum.Flows {
		fmt.Printf("  flow %d→%d: %7.1f ± %5.1f kbit/s\n", f.Src, f.Dst, f.Kbps.Mean, f.Kbps.CI95)
	}
	fmt.Printf("  Jain fairness: %.3f ± %.3f\n", sum.Fairness.Mean, sum.Fairness.CI95)
}

func report(res adhocsim.ScenarioResult) {
	for _, f := range res.Flows {
		fmt.Printf("  flow %d→%d: %7.1f kbit/s, %d retries, %d lost\n",
			f.Src, f.Dst, f.GoodputKbps, f.Retries, f.Gaps)
	}
	fmt.Printf("  Jain fairness: %.3f\n\n", res.Fairness)
}
