// Rate vs range: the paper's Figure 3 / Table 3 measurement. Sweeps the
// distance between two stations at each 802.11b rate and prints the
// packet-loss rate, then the estimated transmission range per rate.
//
//	go run ./examples/raterange
package main

import (
	"fmt"

	"adhocsim"
)

func main() {
	const packets = 150

	rates := []adhocsim.Rate{adhocsim.Rate11, adhocsim.Rate5_5, adhocsim.Rate2, adhocsim.Rate1}

	fmt.Println("Packet loss rate vs distance (200 probes per point)")
	fmt.Printf("%8s", "dist(m)")
	for _, r := range rates {
		fmt.Printf(" %10s", r)
	}
	fmt.Println()

	curves := make(map[adhocsim.Rate][]adhocsim.LossPoint, len(rates))
	for i, r := range rates {
		curves[r] = adhocsim.RunLossSweep(adhocsim.LossSweep{
			Rate:    r,
			Packets: packets,
			Seed:    uint64(100 + i),
		})
	}
	for i := range curves[rates[0]] {
		fmt.Printf("%8.0f", curves[rates[0]][i].Distance)
		for _, r := range rates {
			fmt.Printf(" %10.2f", curves[r][i].Loss)
		}
		fmt.Println()
	}

	fmt.Println("\nEstimated transmission ranges (50% loss crossing):")
	prof := adhocsim.DefaultProfile()
	for _, r := range rates {
		fmt.Printf("  %-8v measured ≈ %5.1f m   (model median %5.1f m, paper: %s)\n",
			r, crossing(curves[r]), prof.MedianRange(r), paperRange(r))
	}
}

func crossing(pts []adhocsim.LossPoint) float64 {
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Loss <= 0.5 && pts[i].Loss >= 0.5 {
			f := (0.5 - pts[i-1].Loss) / (pts[i].Loss - pts[i-1].Loss)
			return pts[i-1].Distance + f*(pts[i].Distance-pts[i-1].Distance)
		}
	}
	return pts[len(pts)-1].Distance
}

func paperRange(r adhocsim.Rate) string {
	switch r {
	case adhocsim.Rate11:
		return "30 m"
	case adhocsim.Rate5_5:
		return "70 m"
	case adhocsim.Rate2:
		return "90-100 m"
	default:
		return "110-130 m"
	}
}
