// Weather variability: the paper's Figure 4. The same 1 Mbit/s
// loss-vs-distance measurement on two days with different channel
// conditions shows how unstable the "transmission range" of a real
// 802.11b link is.
//
//	go run ./examples/weather
package main

import (
	"fmt"

	"adhocsim"
)

func main() {
	base := adhocsim.DefaultProfile()
	days := []adhocsim.Weather{adhocsim.WeatherClear, adhocsim.WeatherDamp}

	fmt.Println("1 Mbit/s packet loss vs distance on two days (paper's Figure 4)")
	fmt.Printf("%8s", "dist(m)")
	for _, w := range days {
		fmt.Printf(" %22s", w.Name)
	}
	fmt.Println()

	var curves [][]adhocsim.LossPoint
	for i, w := range days {
		prof := w.Apply(base)
		var ds []float64
		for d := 50.0; d <= 160; d += 10 {
			ds = append(ds, d)
		}
		curves = append(curves, adhocsim.RunLossSweep(adhocsim.LossSweep{
			Rate:      adhocsim.Rate1,
			Distances: ds,
			Packets:   150,
			Seed:      uint64(7 + i),
			Profile:   prof,
		}))
	}
	for i := range curves[0] {
		fmt.Printf("%8.0f", curves[0][i].Distance)
		for _, c := range curves {
			fmt.Printf(" %22.2f", c[i].Loss)
		}
		fmt.Println()
	}
	fmt.Println("\nThe damp day attenuates faster: the same NIC loses 20+ meters of")
	fmt.Println("range between sessions — the paper's footnote 4 in action.")
}
