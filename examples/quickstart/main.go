// Quickstart: a two-station 802.11b ad hoc network with a saturating
// UDP flow, compared against the paper's analytic maximum (Equation (1)).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"adhocsim"
)

func main() {
	const (
		horizon    = 10 * time.Second
		packetSize = 512
	)

	net := adhocsim.NewNetwork(1)
	sender := net.AddStation(adhocsim.Pos(0, 0), adhocsim.MACConfig{DataRate: adhocsim.Rate11})
	receiver := net.AddStation(adhocsim.Pos(20, 0), adhocsim.MACConfig{DataRate: adhocsim.Rate11})

	var sink adhocsim.UDPSink
	sink.ListenUDP(receiver, 9000)
	adhocsim.NewCBR(net, sender, receiver.Addr(), 9000, packetSize, 0).Start()

	net.Run(horizon)

	ideal := adhocsim.NewCapacityModel(adhocsim.Rate11, packetSize, false).ThroughputMbps()
	fmt.Printf("two stations, 20 m apart, 11 Mbit/s NIC rate, %d-byte packets\n", packetSize)
	fmt.Printf("  analytic maximum (Eq. 1): %.3f Mbit/s\n", ideal)
	fmt.Printf("  measured UDP goodput:     %.3f Mbit/s\n", sink.ThroughputMbps(horizon))
	fmt.Printf("  packets delivered:        %d (%.2f%% of the 11 Mbit/s nominal rate)\n",
		sink.Received, 100*sink.ThroughputMbps(horizon)/11)
}
